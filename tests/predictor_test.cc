/**
 * @file
 * Unit tests for the stride address predictor/prefetcher and the
 * branch predictor.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/stride_table.hh"

namespace dgsim
{
namespace
{

StrideTable
makeTable(StatRegistry &stats, unsigned confidence = 2)
{
    return StrideTable(64, 4, confidence, stats);
}

TEST(StrideTableTest, NoPredictionWithoutConfidence)
{
    StatRegistry stats;
    StrideTable table = makeTable(stats);
    EXPECT_FALSE(table.predictCurrent(0x10).has_value());
    table.train(0x10, 1000);
    EXPECT_FALSE(table.predictCurrent(0x10).has_value());
    table.train(0x10, 1064); // stride 64 observed once (confidence 1)
    EXPECT_FALSE(table.predictCurrent(0x10).has_value());
}

TEST(StrideTableTest, PredictsAfterConfidenceThreshold)
{
    StatRegistry stats;
    StrideTable table = makeTable(stats);
    table.train(0x10, 1000); // allocate
    table.train(0x10, 1064); // stride learned (confidence 0)
    table.train(0x10, 1128); // confirmed once (confidence 1)
    EXPECT_FALSE(table.predictCurrent(0x10).has_value());
    table.train(0x10, 1192); // confirmed twice (confidence 2)
    auto predicted = table.predictCurrent(0x10);
    ASSERT_TRUE(predicted.has_value());
    EXPECT_EQ(*predicted, 1256u);
    table.release(0x10);
}

TEST(StrideTableTest, ZeroStrideIsPredictable)
{
    StatRegistry stats;
    StrideTable table = makeTable(stats);
    for (int i = 0; i < 4; ++i)
        table.train(0x20, 5000);
    auto predicted = table.predictCurrent(0x20);
    ASSERT_TRUE(predicted.has_value());
    EXPECT_EQ(*predicted, 5000u);
    table.release(0x20);
}

TEST(StrideTableTest, StrideChangeResetsConfidence)
{
    StatRegistry stats;
    StrideTable table = makeTable(stats);
    table.train(0x10, 1000);
    table.train(0x10, 1064);
    table.train(0x10, 1128);
    table.train(0x10, 9999); // breaks the stride
    EXPECT_FALSE(table.predictCurrent(0x10).has_value());
}

TEST(StrideTableTest, InflightExtrapolation)
{
    // Multiple in-flight dynamic instances must each predict one
    // further stride step (the 352-entry-ROB case).
    StatRegistry stats;
    StrideTable table = makeTable(stats);
    table.train(0x10, 1000);
    table.train(0x10, 1064);
    table.train(0x10, 1128);
    table.train(0x10, 1192);
    EXPECT_EQ(*table.predictCurrent(0x10), 1256u);
    EXPECT_EQ(*table.predictCurrent(0x10), 1320u);
    EXPECT_EQ(*table.predictCurrent(0x10), 1384u);
    // One commits: train advances the base, release frees a slot.
    table.train(0x10, 1256);
    table.release(0x10);
    EXPECT_EQ(*table.predictCurrent(0x10), 1256u + 3 * 64);
}

TEST(StrideTableTest, ReleaseOnSquashRewindsExtrapolation)
{
    StatRegistry stats;
    StrideTable table = makeTable(stats);
    table.train(0x10, 0);
    table.train(0x10, 8);
    table.train(0x10, 16);
    table.train(0x10, 24);
    EXPECT_EQ(*table.predictCurrent(0x10), 32u);
    EXPECT_EQ(*table.predictCurrent(0x10), 40u);
    table.release(0x10); // squash the younger instance
    EXPECT_EQ(*table.predictCurrent(0x10), 40u) << "slot must be reusable";
}

TEST(StrideTableTest, FullPcTagsPreventAliasing)
{
    StatRegistry stats;
    // 64 entries, 4 ways -> 16 sets; PCs 1 and 17 share a set.
    StrideTable table = makeTable(stats);
    table.train(1, 100);
    table.train(1, 200);
    table.train(1, 300);
    table.train(1, 400);
    table.train(17, 7000);
    // PC 17 must not inherit PC 1's history (full tags).
    EXPECT_FALSE(table.predictCurrent(17).has_value());
    EXPECT_TRUE(table.predictCurrent(1).has_value());
    table.release(1);
}

TEST(StrideTableTest, SetEvictionDropsLruEntry)
{
    StatRegistry stats;
    StrideTable table(8, 2, 2, stats); // 4 sets x 2 ways
    // PCs 0, 4, 8 share set 0.
    table.train(0, 100);
    table.train(4, 200);
    table.train(0, 164); // refresh PC 0
    table.train(8, 300); // evicts PC 4 (LRU)
    EXPECT_NE(table.peek(0), nullptr);
    EXPECT_EQ(table.peek(4), nullptr);
    EXPECT_NE(table.peek(8), nullptr);
}

TEST(StrideTableTest, PredictAheadForPrefetching)
{
    StatRegistry stats;
    StrideTable table = makeTable(stats);
    table.train(0x10, 1000);
    table.train(0x10, 1064);
    table.train(0x10, 1128);
    table.train(0x10, 1192);
    auto ahead = table.predictAhead(0x10, 1192, 4);
    ASSERT_TRUE(ahead.has_value());
    EXPECT_EQ(*ahead, 1192u + 4 * 64);
    // Zero stride: prefetching is pointless and must not fire.
    for (int i = 0; i < 4; ++i)
        table.train(0x30, 4096);
    EXPECT_FALSE(table.predictAhead(0x30, 4096, 4).has_value());
}

// --- Branch predictor -----------------------------------------------------

TEST(BranchPredictorTest, LearnsStableDirection)
{
    StatRegistry stats;
    BranchPredictor predictor(10, 64, stats);
    Instruction branch{Opcode::Beq, 0, 1, 2, 50};
    // Train taken until the (10-bit) history saturates to all-ones and
    // the same gshare counter is reinforced.
    for (int i = 0; i < 30; ++i) {
        const BranchPrediction prediction = predictor.predict(4, branch);
        predictor.update(4, branch, true, 50, prediction.ghrBefore);
        predictor.repairHistory(prediction.ghrBefore, true);
    }
    const BranchPrediction final_prediction = predictor.predict(4, branch);
    EXPECT_TRUE(final_prediction.taken);
    EXPECT_EQ(final_prediction.target, 50u);
}

TEST(BranchPredictorTest, JalAlwaysTakenToImmediate)
{
    StatRegistry stats;
    BranchPredictor predictor(10, 64, stats);
    Instruction jal{Opcode::Jal, 1, 0, 0, 123};
    const BranchPrediction prediction = predictor.predict(9, jal);
    EXPECT_TRUE(prediction.taken);
    EXPECT_EQ(prediction.target, 123u);
}

TEST(BranchPredictorTest, JalrUsesBtbAfterTraining)
{
    StatRegistry stats;
    BranchPredictor predictor(10, 64, stats);
    Instruction jalr{Opcode::Jalr, 0, 5, 0, 0};
    // Untrained: fall-through guess.
    EXPECT_EQ(predictor.predict(7, jalr).target, 8u);
    predictor.update(7, jalr, true, 42, 0);
    EXPECT_EQ(predictor.predict(7, jalr).target, 42u);
}

TEST(BranchPredictorTest, HistoryRepairRestoresSnapshot)
{
    StatRegistry stats;
    BranchPredictor predictor(10, 64, stats);
    Instruction branch{Opcode::Bne, 0, 1, 2, 50};
    const BranchPrediction first = predictor.predict(4, branch);
    predictor.predict(5, branch);
    predictor.predict(6, branch);
    // Squash back to the first branch with its actual outcome.
    predictor.repairHistory(first.ghrBefore, true);
    EXPECT_EQ(predictor.history(), (first.ghrBefore << 1) | 1);
}

TEST(BranchPredictorTest, AlternatingPatternLearnedViaHistory)
{
    StatRegistry stats;
    BranchPredictor predictor(10, 1024, stats);
    Instruction branch{Opcode::Beq, 0, 1, 2, 50};
    // Strictly alternating T/NT: gshare should learn it through the
    // history bits after warm-up.
    bool taken = false;
    int correct_tail = 0;
    for (int i = 0; i < 400; ++i) {
        const BranchPrediction prediction = predictor.predict(4, branch);
        if (i >= 300 && prediction.taken == taken)
            ++correct_tail;
        predictor.update(4, branch, taken, 50, prediction.ghrBefore);
        predictor.repairHistory(prediction.ghrBefore, taken);
        taken = !taken;
    }
    EXPECT_GT(correct_tail, 95) << "gshare should master a 2-cycle "
                                   "pattern (got " << correct_tail
                                << "/100)";
}

} // namespace
} // namespace dgsim
