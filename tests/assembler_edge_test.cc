/**
 * @file
 * Edge-case tests for the assembler, Program container and MemoryImage:
 * error handling (fatal on malformed programs), wrong-path fetch
 * semantics, and data-image behaviour.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/program.hh"

namespace dgsim
{
namespace
{

TEST(AssemblerEdgeTest, DuplicateLabelDies)
{
    EXPECT_EXIT(
        {
            Assembler assembler("dup");
            assembler.label("a").nop().label("a");
        },
        ::testing::ExitedWithCode(1), "duplicate label");
}

TEST(AssemblerEdgeTest, UndefinedLabelDiesAtFinish)
{
    EXPECT_EXIT(
        {
            Assembler assembler("undef");
            assembler.jmp("nowhere");
            assembler.finish();
        },
        ::testing::ExitedWithCode(1), "undefined label");
}

TEST(AssemblerEdgeTest, UnalignedDataWordPanics)
{
    EXPECT_DEATH(
        {
            Assembler assembler("unaligned");
            assembler.data(0x1001, 5);
        },
        "unaligned data word");
}

TEST(AssemblerEdgeTest, BranchTargetsResolveToAbsolutePcs)
{
    Assembler assembler("targets");
    assembler.nop();              // pc 0
    assembler.label("here");      // pc 1
    assembler.nop();              // pc 1
    assembler.beq(1, 2, "here");  // pc 2 -> imm 1
    assembler.jmp("end");         // pc 3 -> imm 5
    assembler.nop();              // pc 4
    assembler.label("end");
    assembler.halt();             // pc 5
    const Program program = assembler.finish();
    EXPECT_EQ(program.text[2].imm, 1);
    EXPECT_EQ(program.text[3].imm, 5);
}

TEST(ProgramTest, OutOfRangeFetchDecodesAsNop)
{
    Assembler assembler("short");
    assembler.halt();
    const Program program = assembler.finish();
    EXPECT_TRUE(program.validPc(0));
    EXPECT_FALSE(program.validPc(1));
    // Wrong-path fetch past the end must be harmless.
    const Instruction nop = program.fetch(123456);
    EXPECT_EQ(nop.op, Opcode::Nop);
}

TEST(MemoryImageTest, UntouchedWordsReadZero)
{
    MemoryImage image;
    EXPECT_EQ(image.read(0x1000), 0u);
    image.write(0x1000, 42);
    EXPECT_EQ(image.read(0x1000), 42u);
    EXPECT_EQ(image.read(0x1008), 0u);
    EXPECT_EQ(image.footprintWords(), 1u);
}

TEST(MemoryImageTest, OverwriteKeepsSingleEntry)
{
    MemoryImage image;
    image.write(0x2000, 1);
    image.write(0x2000, 2);
    EXPECT_EQ(image.read(0x2000), 2u);
    EXPECT_EQ(image.footprintWords(), 1u);
}

TEST(DisassemblerTest, RoundTripsKeyFormats)
{
    EXPECT_EQ(disassemble(Instruction{Opcode::Ld, 3, 4, 0, 16}),
              "ld x3, 16(x4)");
    EXPECT_EQ(disassemble(Instruction{Opcode::St, 0, 4, 5, -8}),
              "st x5, -8(x4)");
    EXPECT_EQ(disassemble(Instruction{Opcode::Beq, 0, 1, 2, 7}),
              "beq x1, x2, 7");
    EXPECT_EQ(disassemble(Instruction{Opcode::Halt, 0, 0, 0, 0}), "halt");
    EXPECT_EQ(disassemble(Instruction{Opcode::Add, 1, 2, 3, 0}),
              "add x1, x2, x3");
    EXPECT_EQ(disassemble(Instruction{Opcode::Addi, 1, 2, 0, 9}),
              "addi x1, x2, 9");
}

} // namespace
} // namespace dgsim
